// Design-choice ablation (§4.2): what each open-group optimisation buys.
//
//   plain          — clients pick request managers by hash; RM waits for a
//                    server-group reply round before answering.
//   restricted     — all clients use the server-group leader as RM, so the
//                    RM is also the sequencer: its forward into the server
//                    group self-orders with zero extra hops (fig. 5(ii)).
//   restricted+async — additionally, the RM answers wait-for-first calls
//                    from its own execution and forwards one-way — the
//                    passive-replication shape (fig. 8(iii)).
//
// Expected: asynchronous forwarding is the big win (it removes the in-group
// reply round: ~40% lower latency and ~60% less wire traffic) and is what
// lets the optimised open group approach the non-replicated lower bound
// (graphs 5-10).  The restricted group by itself funnels every client
// through one member — a CPU hotspot under load — its value is that it
// *enables* asynchronous forwarding / passive replication by making the
// request manager, sequencer and primary coincide.
#include "harness.hpp"

namespace {

using namespace newtop;
using namespace newtop::bench;

RequestReplyOptions variant(Setting setting, bool restricted, bool async, int clients) {
    RequestReplyOptions options;
    options.setting = setting;
    options.servers = 3;
    options.clients = clients;
    options.bind = BindOptions{.mode = BindMode::kOpen,
                               .restricted = restricted,
                               .async_forwarding = async};
    options.mode = InvocationMode::kWaitFirst;
    options.server_order = OrderMode::kTotalAsymmetric;
    return options;
}

#define NEWTOP_BENCH(name, setting, restricted, async)                          \
    void name(benchmark::State& state) {                                       \
        for (auto _ : state) {                                                 \
            report(state, RequestReplyBench::run(variant(                      \
                              setting, restricted, async,                      \
                              static_cast<int>(state.range(0)))));             \
        }                                                                       \
    }                                                                           \
    BENCHMARK(name)->Arg(1)->Arg(8)->Iterations(1)->Unit(benchmark::kMillisecond)

NEWTOP_BENCH(BM_Opt_Lan_Plain, Setting::kLan, false, false);
NEWTOP_BENCH(BM_Opt_Lan_Restricted, Setting::kLan, true, false);
NEWTOP_BENCH(BM_Opt_Lan_RestrictedAsync, Setting::kLan, true, true);
NEWTOP_BENCH(BM_Opt_Distant_Plain, Setting::kDistantClients, false, false);
NEWTOP_BENCH(BM_Opt_Distant_Restricted, Setting::kDistantClients, true, false);
NEWTOP_BENCH(BM_Opt_Distant_RestrictedAsync, Setting::kDistantClients, true, true);

}  // namespace

BENCHMARK_MAIN();
