// Gray-failure resilience: failure-detection latency vs false-positive
// behaviour across CPU slowdown factors, φ-accrual vs fixed-timeout.
//
// For each slowdown factor F in {1, 2, 4, 8} and each detector (the
// default φ-accrual configuration, then phi_threshold_milli = 0 to get the
// paper's original fixed-timeout detector), a 3-replica lively group runs
// a call stream whose servant cost ramps linearly while one non-sequencer
// replica's host executes all CPU work F× slower.  The ramp matters: a
// slowed host's heartbeat gaps then grow gradually, which is exactly the
// history an accrual detector adapts to and a fixed timeout cannot.
//
// Two numbers per configuration:
//
//   false_suspicions : kSuspected events naming the slow-but-alive replica
//                      before any crash — a gray failure misread as a real
//                      one.  The φ detector should stay at zero where the
//                      fixed detector trips (F >= 4 pushes single CPU
//                      bursts past the 200 ms suspicion_timeout).  Fixed-
//                      detector trips *cascade*: the slowed host's delayed
//                      ingest also makes it suspect its healthy peers, and
//                      gossiped suspicions then eject good members.
//   detection_ms     : a *healthy* replica is then crashed and the latency
//                      to the first survivor suspicion measured — the cost
//                      side of the trade.  The fixed floor keeps φ's crash
//                      detection in the same band as the fixed detector
//                      (-1 records a cascade that ejected the healthy
//                      replica before its real crash could be observed).
//
// The run also reports the overload-shedding counters (requests past their
// deadline dropped by the slowed replica) so the degraded-mode behaviour
// is visible in the same table.
//
// Emits BENCH_gray_failure.json (override with NEWTOP_BENCH_OUT) in the
// "configs" schema — mean_latency_ms carries detection_ms, lower is
// better — so scripts/bench_diff.py diffs it against the committed
// baseline unmodified, exactly like BENCH_reconfig.json.
#include "harness.hpp"

#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace {

using namespace newtop;
using namespace newtop::bench;
using namespace newtop::sim_literals;

constexpr int kServers = 3;
constexpr int kCalls = 60;
// Spacing exceeds the largest slowed burst (60 ms nominal x 8 = 480 ms), so
// the slowed host lags but never *saturates*: each burst delays its sends
// and its ingest by up to the burst length, which is the gray condition —
// a saturated CPU (backlog growing without bound) is a real overload the
// detector is right to eject.
constexpr SimTime kCallSpacing = 500_ms;
constexpr SimDuration kCostStep = 1_ms;
constexpr int kSlowReplica = 2;   // never the sequencer (rank 0)
constexpr int kCrashReplica = 1;  // healthy replica crashed for the detection probe

/// Servant whose execution cost ramps with the method number: call k is
/// issued with method k+1, so the slowed host's CPU bursts grow a step at
/// a time instead of jumping — the shape a failure detector must adapt to.
class RampServant : public GroupServant {
public:
    Bytes handle(std::uint32_t, const Bytes&) override {
        return encode_to_bytes(std::uint64_t{1});
    }
    [[nodiscard]] SimDuration execution_cost(std::uint32_t method) const override {
        return static_cast<SimDuration>(method) * kCostStep;
    }
};

struct GrayResult {
    double detection_ms{-1.0};          // crash -> first survivor suspicion
    std::uint64_t false_suspicions{0};  // suspicions of the slow-but-alive replica
    bool slow_in_view{false};           // still a member when the crash happens
    std::uint64_t suspicion_false{0};   // the runtime's own false-suspicion counter
    std::uint64_t shed{0};              // requests shed past their deadline
    std::uint64_t completed{0};
    std::uint64_t timed_out{0};
};

GrayResult run_gray(double factor, bool accrual, std::uint64_t seed) {
    Scheduler scheduler;
    Network net(scheduler, calibration::make_lan_topology(), seed);
    Directory directory;
    obs::VectorTraceSink sink;
    net.metrics().set_trace_sink(&sink);

    std::vector<std::unique_ptr<Orb>> orbs;
    std::vector<std::unique_ptr<NewTopService>> nsos;
    auto add = [&]() -> NewTopService& {
        orbs.push_back(std::make_unique<Orb>(net, net.add_node(SiteId(0))));
        nsos.push_back(std::make_unique<NewTopService>(*orbs.back(), directory));
        return *nsos.back();
    };

    GroupConfig cfg;
    cfg.order = OrderMode::kTotalAsymmetric;
    cfg.liveness = LivenessMode::kLively;
    cfg.phi_threshold_milli = accrual ? 8000 : 0;
    for (int i = 0; i < kServers; ++i) {
        add().serve("svc", cfg, std::make_shared<RampServant>());
        scheduler.run_until(scheduler.now() + 300_ms);
    }
    NewTopService& client = add();
    GroupProxy proxy = client.bind(
        "svc", {.mode = BindMode::kOpen, .restricted = true, .call_timeout = 2_s});
    scheduler.run_until(scheduler.now() + 2_s);

    GrayResult result;
    net.set_cpu_slowdown(orbs[kSlowReplica]->node_id(), factor);
    for (int k = 0; k < kCalls; ++k) {
        proxy.invoke(static_cast<std::uint32_t>(k + 1),
                     encode_to_bytes(static_cast<std::uint64_t>(k)),
                     InvocationMode::kWaitFirst, [&](const GroupReply& reply) {
                         if (reply.complete) {
                             ++result.completed;
                         } else {
                             ++result.timed_out;
                         }
                     });
        scheduler.run_until(scheduler.now() + kCallSpacing);
    }
    // Let the slowed replica's backlog drain (deadline shedding bounds it),
    // then crash a *healthy* replica and time the survivors' detection.
    scheduler.run_until(scheduler.now() + 4_s);

    const std::uint64_t slow_id = nsos[kSlowReplica]->id().value();
    const std::uint64_t crashed_id = nsos[kCrashReplica]->id().value();
    const auto* info = directory.find_group("svc");
    const View* view = nsos[0]->group_comm().current_view(info->id);
    result.slow_in_view = view != nullptr && view->contains(EndpointId(slow_id));
    const SimTime crash_at = scheduler.now();
    net.crash(orbs[kCrashReplica]->node_id());
    scheduler.run_until(scheduler.now() + 8_s);

    for (const obs::TraceEvent& e : sink.events()) {
        if (e.kind != obs::TraceKind::kSuspected) continue;
        if (e.detail == slow_id && e.at < crash_at) ++result.false_suspicions;
        if (e.detail == crashed_id && e.at >= crash_at && result.detection_ms < 0) {
            result.detection_ms = static_cast<double>(e.at - crash_at) / 1000.0;
        }
    }
    result.suspicion_false = net.metrics().counter(obs::metric::kGcsSuspicionFalse);
    result.shed = net.metrics().counter(obs::metric::kInvShed);
    net.metrics().set_trace_sink(nullptr);
    return result;
}

void append_config(std::string& out, const std::string& name, const GrayResult& r) {
    out += "{\"name\":\"" + name + "\"";
    out += ",\"mean_latency_ms\":" + std::to_string(r.detection_ms);
    out += ",\"false_suspicions\":" + std::to_string(r.false_suspicions);
    out += ",\"slow_in_view\":" + std::to_string(r.slow_in_view ? 1 : 0);
    out += ",\"suspicion_false\":" + std::to_string(r.suspicion_false);
    out += ",\"shed\":" + std::to_string(r.shed);
    out += ",\"completed\":" + std::to_string(r.completed);
    out += ",\"timed_out\":" + std::to_string(r.timed_out);
    out += "}";
}

void BM_GrayFailure(benchmark::State& state) {
    for (auto _ : state) {
        const double factors[] = {1.0, 2.0, 4.0, 8.0};
        std::string artifact = "{\"bench\":\"gray_failure\",\"seed\":1,\"configs\":[";
        bool first = true;
        for (const bool accrual : {true, false}) {
            for (const double factor : factors) {
                const GrayResult r = run_gray(factor, accrual, 1);
                if (!first) artifact += ',';
                first = false;
                const std::string name = std::string(accrual ? "phi" : "fixed") + "_x" +
                                         std::to_string(static_cast<int>(factor));
                append_config(artifact, name, r);

                state.counters[name + "_detect_ms"] = r.detection_ms;
                state.counters[name + "_false"] =
                    static_cast<double>(r.false_suspicions);
                if (accrual && r.false_suspicions != 0) {
                    std::cerr << "# GRAY-FAILURE REGRESSION: accrual detector falsely "
                              << "suspected the slow-but-alive replica at x" << factor
                              << "\n";
                }
                // Under the fixed detector an undetected crash is the
                // *expected* cascade (the falsely ejected healthy replica is
                // gone before it dies); only the accrual runs gate on it.
                if (accrual && r.detection_ms < 0) {
                    std::cerr << "# GRAY-FAILURE REGRESSION: crash of a healthy replica "
                              << "went undetected (" << name << ")\n";
                }
            }
        }
        artifact += "]}\n";

        // newtop-lint: allow(getenv): artifact destination only; cannot influence simulated behaviour
        const char* out_path = std::getenv("NEWTOP_BENCH_OUT");
        const std::filesystem::path path =
            (out_path != nullptr && *out_path != '\0') ? out_path : "BENCH_gray_failure.json";
        std::ofstream out(path, std::ios::trunc);
        out << artifact;
        out.close();
        std::cout << "# artifact " << path.string() << "\n";
    }
}
BENCHMARK(BM_GrayFailure)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
