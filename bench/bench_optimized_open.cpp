// Graphs 5-10 — the optimised open group (restricted request manager +
// asynchronous message forwarding, §4.2) against the non-replicated server.
//
// Three servers, asymmetric ordering, wait-for-first; the request manager
// is the sequencer so its forward self-orders, and it answers from its own
// execution while pushing the request one-way to the other members — the
// passive-replication shape.
//
//   Graphs 5-6: clients & servers on the same LAN,
//   Graphs 7-8: servers on the LAN, clients distant,
//   Graphs 9-10: everything geographically distributed.
//
// Expected shape (§5.1.2): the optimised group invocation "closely matches
// the performance of the non-replicated invocation" in every setting.
#include "harness.hpp"

namespace {

using namespace newtop;
using namespace newtop::bench;

RequestReplyOptions optimized(Setting setting, int clients) {
    RequestReplyOptions options;
    options.setting = setting;
    options.servers = 3;
    options.clients = clients;
    options.bind = BindOptions{
        .mode = BindMode::kOpen, .restricted = true, .async_forwarding = true};
    options.mode = InvocationMode::kWaitFirst;
    options.server_order = OrderMode::kTotalAsymmetric;
    return options;
}

RequestReplyOptions baseline(Setting setting, int clients) {
    RequestReplyOptions options = optimized(setting, clients);
    options.servers = 1;
    options.bind = BindOptions{.mode = BindMode::kOpen, .restricted = true};
    return options;
}

#define NEWTOP_BENCH(name, fn)                                             \
    void name(benchmark::State& state) {                                   \
        for (auto _ : state) {                                             \
            report(state, RequestReplyBench::run(                          \
                              fn(static_cast<int>(state.range(0)))));      \
        }                                                                   \
    }                                                                       \
    BENCHMARK(name)->DenseRange(1, 19, 3)->Arg(20)->Iterations(1)->Unit(   \
        benchmark::kMillisecond)

RequestReplyOptions optimized_lan(int c) { return optimized(Setting::kLan, c); }
RequestReplyOptions baseline_lan(int c) { return baseline(Setting::kLan, c); }
RequestReplyOptions optimized_distant(int c) { return optimized(Setting::kDistantClients, c); }
RequestReplyOptions baseline_distant(int c) { return baseline(Setting::kDistantClients, c); }
RequestReplyOptions optimized_geo(int c) { return optimized(Setting::kGeo, c); }
RequestReplyOptions baseline_geo(int c) { return baseline(Setting::kGeo, c); }

NEWTOP_BENCH(BM_Graphs5and6_OptimizedOpen_Lan, optimized_lan);
NEWTOP_BENCH(BM_Graphs5and6_NonReplicated_Lan, baseline_lan);
NEWTOP_BENCH(BM_Graphs7and8_OptimizedOpen_DistantClients, optimized_distant);
NEWTOP_BENCH(BM_Graphs7and8_NonReplicated_DistantClients, baseline_distant);
NEWTOP_BENCH(BM_Graphs9and10_OptimizedOpen_Geo, optimized_geo);
NEWTOP_BENCH(BM_Graphs9and10_NonReplicated_Geo, baseline_geo);

}  // namespace

BENCHMARK_MAIN();
