// Table 1 — "Performance of CORBA": baseline one-to-one ORB invocations
// *without* the NewTop object group service, over the four paths the paper
// measures.  These anchor everything else: the LAN row should be ~1 ms and
// the NewTop overhead (other benches) ~2.5x of it.
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>
#include <string>

#include "net/calibration.hpp"
#include "orb/orb.hpp"
#include "serial/serial.hpp"
#include "util/rng.hpp"

namespace {

using namespace newtop;
using namespace newtop::sim_literals;

class RandomServant : public Servant {
public:
    Bytes dispatch(std::uint32_t, BytesView) override {
        return encode_to_bytes(rng_.next_u64());
    }

private:
    Rng rng_{7};
};

struct DirectResult {
    double latency_ms;
    double throughput_rps;
    std::string metrics_json;
};

DirectResult run_direct(SiteId client_site, SiteId server_site, Topology topology) {
    Scheduler scheduler;
    Network network(scheduler, std::move(topology), 3);
    Orb server(network, network.add_node(server_site));
    Orb client(network, network.add_node(client_site));
    const Ior target = server.adapter().activate(std::make_shared<RandomServant>(), "Random");

    constexpr int kWarmup = 5;
    constexpr int kMeasured = 100;
    int completed = 0;
    SimTime issued_at = 0;
    SimTime window_start = 0;
    SimDuration latency_sum = 0;

    std::function<void()> issue = [&] {
        issued_at = scheduler.now();
        if (completed == kWarmup) window_start = scheduler.now();
        client.invoke(target, 1, Bytes{}, [&](ReplyStatus, const Bytes&) {
            if (completed >= kWarmup) latency_sum += scheduler.now() - issued_at;
            if (++completed < kWarmup + kMeasured) issue();
        });
    };
    issue();
    scheduler.run_until(scheduler.now() + 60_s);

    DirectResult result{};
    result.latency_ms = to_ms(latency_sum) / kMeasured;
    result.throughput_rps = kMeasured / to_seconds(scheduler.now() - window_start);
    // The loop stops issuing when done; use last completion implicitly via
    // latency (closed loop => throughput = 1/latency for one client).
    result.throughput_rps = 1000.0 / result.latency_ms;
    result.metrics_json = network.metrics().to_json();
    return result;
}

void report(benchmark::State& state, const DirectResult& result) {
    state.counters["timed_request_ms"] = result.latency_ms;
    state.counters["req_per_s"] = result.throughput_rps;
    std::cout << "# metrics " << result.metrics_json << "\n";
}

void BM_Table1_LanDistinctNodes(benchmark::State& state) {
    for (auto _ : state) {
        auto sites = calibration::make_paper_topology();
        report(state, run_direct(sites.newcastle, sites.newcastle, std::move(sites.topology)));
    }
}
BENCHMARK(BM_Table1_LanDistinctNodes)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_Table1_PisaToNewcastle(benchmark::State& state) {
    for (auto _ : state) {
        auto sites = calibration::make_paper_topology();
        report(state, run_direct(sites.pisa, sites.newcastle, std::move(sites.topology)));
    }
}
BENCHMARK(BM_Table1_PisaToNewcastle)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_Table1_LondonToNewcastle(benchmark::State& state) {
    for (auto _ : state) {
        auto sites = calibration::make_paper_topology();
        report(state, run_direct(sites.london, sites.newcastle, std::move(sites.topology)));
    }
}
BENCHMARK(BM_Table1_LondonToNewcastle)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_Table1_PisaToLondon(benchmark::State& state) {
    for (auto _ : state) {
        auto sites = calibration::make_paper_topology();
        report(state, run_direct(sites.pisa, sites.london, std::move(sites.topology)));
    }
}
BENCHMARK(BM_Table1_PisaToLondon)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
