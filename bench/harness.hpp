// Shared benchmark harness reproducing the paper's evaluation setups (§5).
//
// Network settings mirror the three client/server group configurations:
//   (i)   low latency: clients and servers on the same LAN,
//   (ii)  low + high latency: servers on the Newcastle LAN, clients split
//         between London and Pisa,
//   (iii) high latency: servers and clients spread over Newcastle, London
//         and Pisa.
//
// Client behaviour follows §5.1: closed-loop clients ("as soon as a reply
// is received, another request is issued"), each timed over a fixed number
// of requests after a short warm-up; we report the mean response time per
// request and the aggregate server throughput.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "alloc_hook.hpp"
#include "net/calibration.hpp"
#include "newtop/newtop_service.hpp"
#include "obs/export.hpp"
#include "obs/names.hpp"
#include "obs/profiler.hpp"

namespace newtop::bench {

using namespace sim_literals;

enum class Setting : std::uint8_t { kLan, kDistantClients, kGeo };

inline const char* setting_name(Setting s) {
    switch (s) {
        case Setting::kLan: return "lan";
        case Setting::kDistantClients: return "distant-clients";
        case Setting::kGeo: return "geo-distributed";
    }
    return "?";
}

/// The paper's benchmark servant: returns a pseudo-random number.
class RandomNumberServant : public GroupServant {
public:
    explicit RandomNumberServant(std::uint64_t seed) : rng_(seed) {}

    Bytes handle(std::uint32_t, const Bytes&) override {
        return encode_to_bytes(rng_.next_u64());
    }

private:
    Rng rng_;
};

struct RequestReplyResult {
    double mean_latency_ms{0.0};
    double throughput_rps{0.0};
    std::uint64_t wire_messages{0};
    /// Full deterministic dump of the world's metrics registry (counters +
    /// latency histograms) at the end of the run.
    std::string metrics_json;
    /// Per-phase critical-path attribution (options.profile only): every
    /// invocation decomposed into marshal / credit_wait / wire / order_wait
    /// / cpu_wait / execution / reply_collection, reconciled against the
    /// independently measured reply-wait histograms.
    obs::ProfileReport profile;
};

struct RequestReplyOptions {
    Setting setting{Setting::kLan};
    int servers{3};
    int clients{1};
    BindOptions bind{};
    InvocationMode mode{InvocationMode::kWaitFirst};
    OrderMode server_order{OrderMode::kTotalAsymmetric};
    int requests_per_client{100};
    int warmup_per_client{5};
    std::uint64_t seed{1};
    /// Trace the whole run (bounded ring), sample the queue/credit gauges,
    /// and attribute every invocation's latency to protocol phases; the
    /// report lands in RequestReplyResult::profile.  NEWTOP_TRACE_DUMP_OUT
    /// additionally writes the raw TraceDump for offline `newtop_prof`.
    bool profile{false};
};

/// One complete request/reply experiment: build the world, run the closed
/// loops, report latency and throughput.
class RequestReplyBench {
public:
    static RequestReplyResult run(const RequestReplyOptions& options) {
        RequestReplyBench bench(options);
        return bench.execute();
    }

private:
    explicit RequestReplyBench(const RequestReplyOptions& options)
        : options_(options),
          sites_(calibration::make_paper_topology()),
          network_(scheduler_, std::move(sites_.topology), options.seed) {}

    struct Client {
        std::unique_ptr<Orb> orb;
        std::unique_ptr<NewTopService> nso;
        GroupProxy proxy;
        int completed{0};
        SimTime issued_at{0};
        SimTime first_measured_issue{-1};
        SimTime last_completion{0};
        std::vector<SimDuration> latencies;
    };

    [[nodiscard]] SiteId server_site(int index) const {
        if (options_.setting == Setting::kGeo) {
            const SiteId spread[3] = {sites_.newcastle, sites_.london, sites_.pisa};
            return spread[index % 3];
        }
        return sites_.newcastle;
    }

    [[nodiscard]] SiteId client_site(int index) const {
        switch (options_.setting) {
            case Setting::kLan: return sites_.newcastle;
            case Setting::kDistantClients:
                return index % 2 == 0 ? sites_.london : sites_.pisa;
            case Setting::kGeo: {
                const SiteId spread[3] = {sites_.newcastle, sites_.london, sites_.pisa};
                return spread[index % 3];
            }
        }
        return sites_.newcastle;
    }

    void issue_next(Client& client) {
        client.issued_at = scheduler_.now();
        if (client.completed == options_.warmup_per_client &&
            client.first_measured_issue < 0) {
            client.first_measured_issue = scheduler_.now();
        }
        client.proxy.invoke(1, Bytes{}, options_.mode, [this, &client](const GroupReply&) {
            on_completion(client);
        });
    }

    void on_completion(Client& client) {
        if (client.completed >= options_.warmup_per_client) {
            client.latencies.push_back(scheduler_.now() - client.issued_at);
            client.last_completion = scheduler_.now();
        }
        ++client.completed;
        if (client.completed < options_.warmup_per_client + options_.requests_per_client) {
            issue_next(client);
        }
    }

    /// Deterministic experiment label: doubles as the trace file name, so a
    /// same-seed rerun overwrites its predecessor with identical bytes.
    [[nodiscard]] std::string label() const {
        return std::string("rr_") + setting_name(options_.setting) +
               (options_.bind.mode == BindMode::kClosed ? "_closed" : "_open") + "_s" +
               std::to_string(options_.servers) + "_c" + std::to_string(options_.clients) +
               "_m" + std::to_string(static_cast<int>(options_.mode)) + "_o" +
               std::to_string(static_cast<int>(options_.server_order)) + "_seed" +
               std::to_string(options_.seed);
    }

    void append_expectation(obs::TraceDump& dump, std::string_view metric) {
        if (const obs::LatencyHistogram* h = network_.metrics().histogram(metric)) {
            dump.expectations.push_back(
                obs::TraceExpectation{std::string(metric), h->count(), h->sum()});
        }
    }

    RequestReplyResult execute() {
        // NEWTOP_TRACE_OUT=<dir> installs a bounded ring sink for the whole
        // experiment and writes a Perfetto-loadable JSON per run.
        // newtop-lint: allow(getenv): export destination only; cannot influence simulated behaviour
        const char* trace_dir = std::getenv("NEWTOP_TRACE_OUT");
        std::unique_ptr<obs::RingTraceSink> trace_sink;
        if (options_.profile || (trace_dir != nullptr && *trace_dir != '\0')) {
            trace_sink = std::make_unique<obs::RingTraceSink>(std::size_t{1} << 20);
            trace_sink->attach_metrics(&network_.metrics());
            network_.metrics().set_trace_sink(trace_sink.get());
        }
        if (options_.profile) {
            // Queue/credit time series ride along with the trace: holdback
            // depth, credits in flight, blocked sends, CPU backlog and
            // directory size sampled on fixed sim-time ticks.
            network_.enable_gauge_sampling(100_ms, 700_s);
        }

        // Servers.
        GroupConfig server_config;
        server_config.order = options_.server_order;
        for (int i = 0; i < options_.servers; ++i) {
            server_orbs_.push_back(
                std::make_unique<Orb>(network_, network_.add_node(server_site(i))));
            server_nsos_.push_back(
                std::make_unique<NewTopService>(*server_orbs_.back(), directory_));
            server_nsos_.back()->serve("svc", server_config,
                                       std::make_shared<RandomNumberServant>(options_.seed));
            scheduler_.run_until(scheduler_.now() + 300_ms);
        }

        // Clients.
        for (int i = 0; i < options_.clients; ++i) {
            auto client = std::make_unique<Client>();
            client->orb = std::make_unique<Orb>(network_, network_.add_node(client_site(i)));
            client->nso = std::make_unique<NewTopService>(*client->orb, directory_);
            client->proxy = client->nso->bind("svc", options_.bind);
            clients_.push_back(std::move(client));
        }
        scheduler_.run_until(scheduler_.now() + 2_s);  // bindings settle

        const std::uint64_t wire_before = network_.stats().messages_sent;
        for (auto& client : clients_) issue_next(*client);

        // Run until every client has finished its measured batch (bounded
        // for safety: a wedged configuration shows up as zero throughput).
        const int total = options_.warmup_per_client + options_.requests_per_client;
        const SimDuration step = 1_s;
        for (int guard = 0; guard < 600; ++guard) {
            scheduler_.run_until(scheduler_.now() + step);
            bool all_done = true;
            for (const auto& client : clients_) all_done &= client->completed >= total;
            if (all_done) break;
        }

        RequestReplyResult result;
        result.wire_messages = network_.stats().messages_sent - wire_before;
        std::vector<double> per_client_means;
        SimTime first_issue = -1;
        SimTime last_completion = 0;
        std::size_t measured = 0;
        for (const auto& client : clients_) {
            if (client->latencies.empty()) continue;
            const double sum = std::accumulate(client->latencies.begin(),
                                               client->latencies.end(), 0.0);
            per_client_means.push_back(sum / static_cast<double>(client->latencies.size()));
            measured += client->latencies.size();
            if (first_issue < 0 || client->first_measured_issue < first_issue) {
                first_issue = client->first_measured_issue;
            }
            last_completion = std::max(last_completion, client->last_completion);
        }
        if (!per_client_means.empty()) {
            result.mean_latency_ms =
                to_ms(static_cast<SimDuration>(std::accumulate(per_client_means.begin(),
                                                               per_client_means.end(), 0.0) /
                                               static_cast<double>(per_client_means.size())));
        }
        if (last_completion > first_issue && first_issue >= 0) {
            result.throughput_rps = static_cast<double>(measured) /
                                    to_seconds(last_completion - first_issue);
        }
        result.metrics_json = network_.metrics().to_json();

        if (trace_sink != nullptr) {
            network_.metrics().set_trace_sink(nullptr);
        }
        if (options_.profile && trace_sink != nullptr) {
            // Package the stream as a self-describing dump: the embedded
            // histogram totals are what the profiler reconciles its phase
            // sums against (>1% mismatch = tracing bug).
            obs::TraceDump dump = trace_sink->dump();
            append_expectation(dump, obs::metric::kInvReplyWaitOneway);
            append_expectation(dump, obs::metric::kInvReplyWaitFirst);
            append_expectation(dump, obs::metric::kInvReplyWaitMajority);
            append_expectation(dump, obs::metric::kInvReplyWaitAll);
            append_expectation(dump, obs::metric::kInvReplyWaitOther);
            append_expectation(dump, obs::metric::kGcsDeliveryLatencyUs);
            result.profile = obs::LatencyProfiler{}.analyze(dump);
            // newtop-lint: allow(getenv): artifact destination only; cannot influence simulated behaviour
            const char* dump_dir = std::getenv("NEWTOP_TRACE_DUMP_OUT");
            if (dump_dir != nullptr && *dump_dir != '\0') {
                const std::filesystem::path dir(dump_dir);
                std::filesystem::create_directories(dir);
                const std::filesystem::path path = dir / (label() + ".trace.json");
                std::ofstream out(path, std::ios::binary | std::ios::trunc);
                out << dump.to_json();
                out.close();
                std::cout << "# trace-dump " << path.string() << "\n";
            }
        }
        if (trace_dir != nullptr && *trace_dir != '\0' && trace_sink != nullptr) {
            obs::ExportOptions export_options;
            for (const auto& nso : server_nsos_) {
                export_options.actor_to_node[nso->id().value()] =
                    nso->orb().node_id().value();
            }
            for (const auto& client : clients_) {
                export_options.actor_to_node[client->nso->id().value()] =
                    client->orb->node_id().value();
            }
            const std::filesystem::path dir(trace_dir);
            std::filesystem::create_directories(dir);
            const std::filesystem::path path = dir / (label() + ".json");
            std::ofstream out(path, std::ios::binary | std::ios::trunc);
            out << obs::export_chrome_trace(trace_sink->snapshot(), export_options);
            out.close();
            std::cout << "# trace " << path.string() << "\n";
        }
        return result;
    }

    RequestReplyOptions options_;
    Scheduler scheduler_;
    calibration::PaperSites sites_;
    Network network_;
    Directory directory_;
    std::vector<std::unique_ptr<Orb>> server_orbs_;
    std::vector<std::unique_ptr<NewTopService>> server_nsos_;
    std::vector<std::unique_ptr<Client>> clients_;
};

/// Emit a world's metrics dump on stdout.  One line per experiment, grep-
/// friendly prefix; the JSON itself is deterministic for a given seed.
inline void emit_metrics(const std::string& metrics_json) {
    if (!metrics_json.empty()) std::cout << "# metrics " << metrics_json << "\n";
}

/// Attach the standard result counters to a google-benchmark state and
/// print the metrics blob for the run.
inline void report(::benchmark::State& state, const RequestReplyResult& result) {
    state.counters["latency_ms"] = result.mean_latency_ms;
    state.counters["req_per_s"] = result.throughput_rps;
    state.counters["wire_msgs"] = static_cast<double>(result.wire_messages);
    emit_metrics(result.metrics_json);
}

}  // namespace newtop::bench
