// Invocation latency through a runtime reconfiguration (view-synchronous
// protocol switch) under load.
//
// A 3-replica wait-all group starts under the symmetric ordering protocol
// while one client issues a fixed-rate stream of invocations.  Eight times
// during the stream a member proposes a sym<->asym protocol toggle through
// the group's own total order (each switch window is a single flush round,
// so episodes are pooled to give the through-switch tail real support).
// Every call's response time is recorded and attributed to one of three
// windows:
//
//   steady_symmetric  : issued and completed under the symmetric protocol,
//   through_switch    : in flight while a flush + view install ran,
//   steady_asymmetric : issued and completed under the asymmetric protocol.
//
// The through-switch p99 is the headline number: it bounds the latency a
// client observes when an operator retunes a live group.  The run also
// asserts the view-synchrony contract observably — zero lost or incomplete
// invocations across the boundary — and reports the flush stall measured by
// the runtime itself (obs::metric::kGcsReconfigStallUs).
//
// Emits BENCH_reconfig.json (override with NEWTOP_BENCH_OUT) in the same
// "configs" schema as BENCH_latency_breakdown.json so scripts/bench_diff.py
// diffs it against the committed baseline unmodified.
#include "harness.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

namespace {

using namespace newtop;
using namespace newtop::bench;
using namespace newtop::sim_literals;

constexpr int kServers = 3;
constexpr int kCalls = 600;
constexpr SimTime kCallSpacing = 10_ms;
// Eight sym<->asym toggles spread through the stream: each switch window is
// short (~one flush round), so a single episode yields one or two in-flight
// samples — pooling episodes gives the through-switch p99 real support.
constexpr int kFirstSwitchCall = 100;
constexpr int kCallsBetweenSwitches = 60;
constexpr int kEpisodes = 8;

struct CallRecord {
    SimTime issued{0};
    SimTime completed{0};
    std::size_t replies{0};
    bool done{false};
};

struct PhaseStats {
    std::uint64_t calls{0};
    double mean_ms{0.0};
    double p50_ms{0.0};
    double p99_ms{0.0};
    double max_ms{0.0};
};

PhaseStats summarize(std::vector<double>& latencies_us) {
    PhaseStats stats;
    stats.calls = latencies_us.size();
    if (latencies_us.empty()) return stats;
    std::sort(latencies_us.begin(), latencies_us.end());
    double sum = 0.0;
    for (const double v : latencies_us) sum += v;
    auto at_quantile = [&](double q) {
        const auto rank = static_cast<std::size_t>(
            std::ceil(q * static_cast<double>(latencies_us.size())));
        return latencies_us[rank == 0 ? 0 : rank - 1] / 1000.0;
    };
    stats.mean_ms = sum / static_cast<double>(latencies_us.size()) / 1000.0;
    stats.p50_ms = at_quantile(0.50);
    stats.p99_ms = at_quantile(0.99);
    stats.max_ms = latencies_us.back() / 1000.0;
    return stats;
}

struct Episode {
    SimTime proposed_at{0};
    SimTime installed_at{0};
    OrderMode to{OrderMode::kTotalAsymmetric};
};

struct ReconfigResult {
    PhaseStats symmetric;
    PhaseStats through;
    PhaseStats asymmetric;
    std::vector<Episode> episodes;
    SimTime max_install_lag{0};
    SimTime mean_install_lag{0};
    std::uint64_t reconfig_switches{0};
    std::uint64_t lost{0};
    std::uint64_t incomplete{0};
};

ReconfigResult run_reconfig(std::uint64_t seed) {
    Scheduler scheduler;
    Network net(scheduler, calibration::make_lan_topology(), seed);
    Directory directory;

    std::vector<std::unique_ptr<Orb>> orbs;
    std::vector<std::unique_ptr<NewTopService>> nsos;
    auto add = [&]() -> NewTopService& {
        orbs.push_back(std::make_unique<Orb>(net, net.add_node(SiteId(0))));
        nsos.push_back(std::make_unique<NewTopService>(*orbs.back(), directory));
        return *nsos.back();
    };

    GroupConfig cfg;
    cfg.order = OrderMode::kTotalSymmetric;
    cfg.liveness = LivenessMode::kLively;
    for (int i = 0; i < kServers; ++i) {
        add().serve("svc", cfg, std::make_shared<RandomNumberServant>(seed + 1 + i));
        scheduler.run_until(scheduler.now() + 300_ms);
    }
    NewTopService& client = add();
    GroupProxy proxy = client.bind("svc", {.mode = BindMode::kOpen, .restricted = true});
    scheduler.run_until(scheduler.now() + 2_s);

    const auto* info = directory.find_group("svc");
    const GroupId group = info->id;

    ReconfigResult result;
    result.episodes.reserve(kEpisodes);
    std::vector<CallRecord> calls(kCalls);
    for (int k = 0; k < kCalls; ++k) {
        calls[static_cast<std::size_t>(k)].issued = scheduler.now();
        proxy.invoke(1, encode_to_bytes(static_cast<std::uint64_t>(k)),
                     InvocationMode::kWaitAll, [&, k](const GroupReply& reply) {
                         CallRecord& record = calls[static_cast<std::size_t>(k)];
                         record.completed = scheduler.now();
                         record.replies = reply.replies.size();
                         record.done = true;
                     });
        const int since_first = k - kFirstSwitchCall;
        if (since_first >= 0 && since_first % kCallsBetweenSwitches == 0 &&
            since_first / kCallsBetweenSwitches < kEpisodes) {
            // A member proposes the toggle through the group's own total
            // order; a probe then watches for every replica to install the
            // new configuration — the last install delimits the
            // through-switch window.
            const auto episode_index = result.episodes.size();
            const std::uint64_t expected_epoch = episode_index + 1;
            Episode episode;
            episode.proposed_at = scheduler.now();
            episode.to = episode_index % 2 == 0 ? OrderMode::kTotalAsymmetric
                                                : OrderMode::kTotalSymmetric;
            result.episodes.push_back(episode);
            GroupConfig next = cfg;
            next.order = episode.to;
            nsos[0]->reconfigure(group, next);
            auto probe = std::make_shared<std::function<void()>>();
            *probe = [&, probe, episode_index, expected_epoch] {
                for (int i = 0; i < kServers; ++i) {
                    if (nsos[static_cast<std::size_t>(i)]->config_epoch(group) <
                        expected_epoch) {
                        scheduler.schedule_at(scheduler.now() + 500_us, *probe);
                        return;
                    }
                }
                if (result.episodes[episode_index].installed_at == 0) {
                    result.episodes[episode_index].installed_at = scheduler.now();
                }
            };
            scheduler.schedule_at(scheduler.now() + 500_us, *probe);
        }
        scheduler.run_until(scheduler.now() + kCallSpacing);
    }
    scheduler.run_until(scheduler.now() + 10_s);

    result.reconfig_switches = net.metrics().counter(obs::metric::kGcsReconfigs);
    SimTime lag_sum = 0;
    for (const Episode& episode : result.episodes) {
        const SimTime lag = episode.installed_at - episode.proposed_at;
        lag_sum += lag;
        result.max_install_lag = std::max(result.max_install_lag, lag);
    }
    if (!result.episodes.empty()) {
        result.mean_install_lag = lag_sum / static_cast<SimTime>(result.episodes.size());
    }

    // Attribute each call: in flight across any switch window -> "through";
    // otherwise to the steady-state protocol in force when it was issued.
    auto overlaps_switch = [&](const CallRecord& record) {
        for (const Episode& episode : result.episodes) {
            if (record.completed > episode.proposed_at &&
                (episode.installed_at == 0 || record.issued < episode.installed_at)) {
                return true;
            }
        }
        return false;
    };
    auto order_at = [&](SimTime at) {
        OrderMode order = cfg.order;
        for (const Episode& episode : result.episodes) {
            if (episode.installed_at != 0 && episode.installed_at <= at) order = episode.to;
        }
        return order;
    };
    std::vector<double> sym_us;
    std::vector<double> through_us;
    std::vector<double> asym_us;
    for (const CallRecord& record : calls) {
        if (!record.done) {
            ++result.lost;
            continue;
        }
        if (record.replies != static_cast<std::size_t>(kServers)) ++result.incomplete;
        const auto latency = static_cast<double>(record.completed - record.issued);
        if (overlaps_switch(record)) {
            through_us.push_back(latency);
        } else if (order_at(record.issued) == OrderMode::kTotalSymmetric) {
            sym_us.push_back(latency);
        } else {
            asym_us.push_back(latency);
        }
    }
    result.symmetric = summarize(sym_us);
    result.through = summarize(through_us);
    result.asymmetric = summarize(asym_us);
    return result;
}

void append_phase(std::string& out, const char* name, const PhaseStats& stats) {
    out += std::string("{\"name\":\"") + name + "\"";
    out += ",\"calls\":" + std::to_string(stats.calls);
    out += ",\"mean_latency_ms\":" + std::to_string(stats.mean_ms);
    out += ",\"p50_latency_ms\":" + std::to_string(stats.p50_ms);
    out += ",\"p99_latency_ms\":" + std::to_string(stats.p99_ms);
    out += ",\"max_latency_ms\":" + std::to_string(stats.max_ms);
    out += "}";
}

void BM_Reconfig(benchmark::State& state) {
    for (auto _ : state) {
        const ReconfigResult result = run_reconfig(1);

        std::string artifact = "{\"bench\":\"reconfig\",\"seed\":1,\"configs\":[";
        append_phase(artifact, "steady_symmetric", result.symmetric);
        artifact += ',';
        append_phase(artifact, "through_switch", result.through);
        artifact += ',';
        append_phase(artifact, "steady_asymmetric", result.asymmetric);
        artifact += "],\"switch\":{";
        artifact += "\"episodes\":" + std::to_string(result.episodes.size());
        artifact += ",\"mean_install_lag_us\":" + std::to_string(result.mean_install_lag);
        artifact += ",\"max_install_lag_us\":" + std::to_string(result.max_install_lag);
        artifact += ",\"switches\":" + std::to_string(result.reconfig_switches);
        artifact += "},\"lost\":" + std::to_string(result.lost);
        artifact += ",\"incomplete\":" + std::to_string(result.incomplete);
        artifact += "}\n";

        state.counters["sym_p99_ms"] = result.symmetric.p99_ms;
        state.counters["through_p99_ms"] = result.through.p99_ms;
        state.counters["asym_p99_ms"] = result.asymmetric.p99_ms;
        state.counters["mean_install_lag_ms"] =
            static_cast<double>(result.mean_install_lag) / 1000.0;
        state.counters["lost"] = static_cast<double>(result.lost);
        state.counters["incomplete"] = static_cast<double>(result.incomplete);

        if (result.lost != 0 || result.incomplete != 0 ||
            result.reconfig_switches != static_cast<std::uint64_t>(kEpisodes * kServers)) {
            std::cerr << "# VIEW-SYNCHRONY VIOLATION: lost=" << result.lost
                      << " incomplete=" << result.incomplete
                      << " switches=" << result.reconfig_switches << "\n";
        }

        // newtop-lint: allow(getenv): artifact destination only; cannot influence simulated behaviour
        const char* out_path = std::getenv("NEWTOP_BENCH_OUT");
        const std::filesystem::path path =
            (out_path != nullptr && *out_path != '\0') ? out_path : "BENCH_reconfig.json";
        std::ofstream out(path, std::ios::trunc);
        out << artifact;
        out.close();
        std::cout << "# artifact " << path.string() << "\n";
    }
}
BENCHMARK(BM_Reconfig)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
