// Recovery experiment — mean time to repair under crash/restart faults.
//
// Three actively-replicated RecoveryManager servers host a counter service
// while one closed-loop client keeps calling it.  Every cycle one replica
// (round-robin) is crashed and restarted after a fixed outage; the
// RecoveryManager rebuilds the process (fresh endpoint, directory eviction,
// rejoin, state transfer) and the first request executed by the recovered
// replica closes the crash -> repaired interval into the `recovery.mttr`
// histogram.  We report its percentiles.
//
//   LAN: replicas and client on the Newcastle LAN — MTTR is dominated by
//        the fixed outage plus failure detection.
//   WAN: replicas spread over Newcastle/London/Pisa — rejoin, flush and
//        state transfer all cross wide-area links, so repair stretches by
//        several round trips.
#include "harness.hpp"
#include "newtop/recovery_manager.hpp"
#include "replication/recoverable.hpp"

namespace {

using namespace newtop;
using namespace newtop::bench;

constexpr std::uint32_t kIncrement = 1;

/// Replicated application state: a counter whose snapshot is its value.
class CounterServant : public StatefulServant {
public:
    Bytes handle(std::uint32_t, const Bytes&) override {
        ++value_;
        return encode_to_bytes(value_);
    }

    [[nodiscard]] Bytes snapshot() const override { return encode_to_bytes(value_); }
    void restore(const Bytes& snapshot) override {
        value_ = decode_from_bytes<std::uint64_t>(snapshot);
    }

private:
    std::uint64_t value_{0};
};

struct MttrOptions {
    Setting setting{Setting::kLan};
    int replicas{3};
    int cycles{8};
    SimDuration outage{500_ms};     // crash -> restart begins
    SimDuration cycle_gap{8_s};     // crash -> next crash
    SimDuration client_pace{10_ms}; // completion -> next request
    std::uint64_t seed{1};
};

struct MttrResult {
    double mean_ms{0.0};
    double min_ms{0.0};
    double p90_ms{0.0};
    double max_ms{0.0};
    std::uint64_t recoveries{0};
    std::uint64_t completions{0};
    std::string metrics_json;
};

class MttrBench {
public:
    static MttrResult run(const MttrOptions& options) {
        MttrBench bench(options);
        return bench.execute();
    }

private:
    explicit MttrBench(const MttrOptions& options)
        : options_(options),
          sites_(calibration::make_paper_topology()),
          network_(scheduler_, std::move(sites_.topology), options.seed) {}

    [[nodiscard]] SiteId replica_site(int index) const {
        if (options_.setting == Setting::kLan) return sites_.newcastle;
        const SiteId spread[3] = {sites_.newcastle, sites_.london, sites_.pisa};
        return spread[index % 3];
    }

    [[nodiscard]] SiteId client_site() const {
        return options_.setting == Setting::kLan ? sites_.newcastle : sites_.london;
    }

    void issue_next() {
        proxy_.invoke(kIncrement, Bytes{}, InvocationMode::kWaitFirst,
                      [this](const GroupReply& reply) {
                          completions_ += reply.complete ? 1 : 0;
                          // Pace the loop instead of reissuing inline: while
                          // the binding is backed off, calls fail fast and an
                          // unpaced loop would spin the scheduler.
                          scheduler_.schedule_after(options_.client_pace,
                                                    [this] { issue_next(); });
                      });
    }

    MttrResult execute() {
        // Replicas, staggered so joins serialize deterministically.
        GroupConfig config;
        config.order = OrderMode::kTotalAsymmetric;
        config.liveness = LivenessMode::kLively;
        for (int i = 0; i < options_.replicas; ++i) {
            managers_.push_back(std::make_unique<RecoveryManager>(
                network_, directory_, replica_site(i),
                make_active_generation("counter", config,
                                       [] { return std::make_shared<CounterServant>(); })));
            scheduler_.run_until(scheduler_.now() + 300_ms);
        }
        scheduler_.run_until(scheduler_.now() + 2_s);

        client_orb_ = std::make_unique<Orb>(network_, network_.add_node(client_site()));
        client_nso_ = std::make_unique<NewTopService>(*client_orb_, directory_);
        proxy_ = client_nso_->bind("counter", BindOptions{.mode = BindMode::kOpen});
        scheduler_.run_until(scheduler_.now() + 1_s);
        issue_next();

        // Fault cycles: round-robin victim, fixed outage, generous gap so
        // each repair completes (and is measured) before the next fault.
        for (int cycle = 0; cycle < options_.cycles; ++cycle) {
            RecoveryManager& victim = *managers_[cycle % managers_.size()];
            victim.crash();
            victim.restart_after(options_.outage);
            scheduler_.run_until(scheduler_.now() + options_.cycle_gap);
        }
        scheduler_.run_until(scheduler_.now() + 5_s);

        MttrResult result;
        result.completions = completions_;
        if (const auto* mttr = network_.metrics().histogram("recovery.mttr")) {
            result.recoveries = mttr->count();
            result.mean_ms = to_ms(mttr->sum()) / static_cast<double>(mttr->count());
            result.min_ms = to_ms(mttr->min());
            result.p90_ms = to_ms(mttr->quantile(0.90));
            result.max_ms = to_ms(mttr->max());
        }
        result.metrics_json = network_.metrics().to_json();
        return result;
    }

    MttrOptions options_;
    Scheduler scheduler_;
    calibration::PaperSites sites_;
    Network network_;
    Directory directory_;
    std::vector<std::unique_ptr<RecoveryManager>> managers_;
    std::unique_ptr<Orb> client_orb_;
    std::unique_ptr<NewTopService> client_nso_;
    GroupProxy proxy_;
    std::uint64_t completions_{0};
};

void report_mttr(benchmark::State& state, const MttrResult& result) {
    state.counters["mttr_mean_ms"] = result.mean_ms;
    state.counters["mttr_min_ms"] = result.min_ms;
    state.counters["mttr_p90_ms"] = result.p90_ms;
    state.counters["mttr_max_ms"] = result.max_ms;
    state.counters["recoveries"] = static_cast<double>(result.recoveries);
    state.counters["completions"] = static_cast<double>(result.completions);
    emit_metrics(result.metrics_json);
}

void BM_Recovery_Mttr_Lan(benchmark::State& state) {
    for (auto _ : state) {
        MttrOptions options;
        options.setting = Setting::kLan;
        options.seed = static_cast<std::uint64_t>(state.range(0));
        report_mttr(state, MttrBench::run(options));
    }
}
BENCHMARK(BM_Recovery_Mttr_Lan)->DenseRange(1, 3)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_Recovery_Mttr_Wan(benchmark::State& state) {
    for (auto _ : state) {
        MttrOptions options;
        options.setting = Setting::kGeo;
        options.seed = static_cast<std::uint64_t>(state.range(0));
        report_mttr(state, MttrBench::run(options));
    }
}
BENCHMARK(BM_Recovery_Mttr_Wan)->DenseRange(1, 3)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
