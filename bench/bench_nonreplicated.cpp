// Graphs 1-4 — non-replicated server accessed *through* the NewTop service.
//
// A single-member server group, open binding, 1..20 closed-loop clients.
//   Graphs 1-2: clients on the server's LAN (latency / throughput),
//   Graphs 3-4: clients distant (London + Pisa), server in Newcastle.
//
// Expected shapes (§5.1.1): the single NewTop call costs ~2.5x a plain
// CORBA call (~2.5 ms LAN, ~29 ms Internet); on the LAN one client already
// saturates the server so latency climbs with clients while throughput
// flattens; over the Internet throughput keeps growing with clients and
// latency stays roughly flat.
#include "harness.hpp"

namespace {

using namespace newtop;
using namespace newtop::bench;

RequestReplyOptions nonreplicated(Setting setting, int clients) {
    RequestReplyOptions options;
    options.setting = setting;
    options.servers = 1;
    options.clients = clients;
    options.bind = BindOptions{.mode = BindMode::kOpen, .restricted = true};
    options.mode = InvocationMode::kWaitFirst;
    options.server_order = OrderMode::kTotalAsymmetric;
    return options;
}

void BM_Graphs1and2_NonReplicated_Lan(benchmark::State& state) {
    for (auto _ : state) {
        report(state, RequestReplyBench::run(
                          nonreplicated(Setting::kLan, static_cast<int>(state.range(0)))));
    }
}
BENCHMARK(BM_Graphs1and2_NonReplicated_Lan)
    ->DenseRange(1, 19, 3)
    ->Arg(20)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_Graphs3and4_NonReplicated_DistantClients(benchmark::State& state) {
    for (auto _ : state) {
        report(state,
               RequestReplyBench::run(nonreplicated(Setting::kDistantClients,
                                                    static_cast<int>(state.range(0)))));
    }
}
BENCHMARK(BM_Graphs3and4_NonReplicated_DistantClients)
    ->DenseRange(1, 19, 3)
    ->Arg(20)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
