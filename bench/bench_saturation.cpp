// LAN saturation — sustained data-plane throughput with and without the
// batched ordering window (send coalescing + multi-assignment ORDER
// records + arena CDR).
//
// Unlike the paper's closed-loop request/reply experiments, this bench
// flood-feeds senders faster than the unbatched pipeline can drain, so the
// per-message protocol overhead (one stream slot + one ORDER assignment +
// stability traffic per payload) becomes the bottleneck.  The batched mode
// coalesces queued payloads into shared stream slots under credit-based
// flow control; the figure of merit is sustained delivered
// invocations/sec, and the acceptance bar for this artifact is a >=5x
// speedup of batched over unbatched.
//
// Emits BENCH_saturation.json (override the path with NEWTOP_BENCH_OUT)
// and the standard deterministic `# metrics` line.
#include "harness.hpp"

#include "gcs/endpoint.hpp"
#include "obs/profiler.hpp"

namespace {

using namespace newtop;
using namespace newtop::bench;

/// Permitted net heap growth per delivered invocation in the measured
/// window (see the steady-state check in BM_Saturation_Lan).
constexpr double kNetAllocBudgetPerInv = 0.5;

struct SaturationOptions {
    std::size_t order_window{16};  // 0 = unbatched (pre-window behaviour)
    std::size_t order_max_batch{64};
    int members{3};
    int senders{2};
    int burst{16};               // payloads submitted per feed tick
    SimDuration feed_interval{2_ms};
    SimDuration warmup{1_s};
    SimDuration measured{5_s};
    std::size_t payload_bytes{32};
    std::uint64_t seed{1};
    /// Trace the run, sample the credit/holdback gauges and reconcile the
    /// trace-derived ship->delivery sums against gcs.delivery_latency_us.
    bool profile{false};
};

struct SaturationResult {
    double invocations_per_sec{0.0};
    std::uint64_t delivered{0};
    std::uint64_t wire_messages{0};
    /// Heap traffic inside the measured window, per delivered invocation
    /// (bench/alloc_hook.cpp counters).  Churn counts every operator new;
    /// net is allocations never freed — the steady-state protocol recycles
    /// its buffers, so net must stay ~0.
    double allocs_per_inv{0.0};
    double net_allocs_per_inv{0.0};
    std::string metrics_json;
    obs::ProfileReport profile;  // options.profile only
};

/// One flood run: `senders` members feed open-loop bursts into an
/// asymmetric-order group; deliveries are counted at the sequencer.
SaturationResult run_saturation(const SaturationOptions& options) {
    Scheduler scheduler;
    Network network(scheduler, calibration::make_lan_topology(), options.seed);
    Directory directory;

    std::unique_ptr<obs::RingTraceSink> sink;
    if (options.profile) {
        sink = std::make_unique<obs::RingTraceSink>(std::size_t{1} << 19);
        sink->attach_metrics(&network.metrics());
        network.metrics().set_trace_sink(sink.get());
        network.enable_gauge_sampling(10_ms, 2_s);
    }

    std::vector<std::unique_ptr<Orb>> orbs;
    std::vector<std::unique_ptr<GroupCommEndpoint>> endpoints;
    for (int i = 0; i < options.members; ++i) {
        orbs.push_back(std::make_unique<Orb>(network, network.add_node(SiteId(0))));
        endpoints.push_back(std::make_unique<GroupCommEndpoint>(*orbs.back(), directory));
    }

    GroupConfig config;
    config.order = OrderMode::kTotalAsymmetric;
    config.order_window = options.order_window;
    config.order_max_batch = options.order_max_batch;
    const GroupId group = endpoints[0]->create_group("saturation", config);
    for (int i = 1; i < options.members; ++i) endpoints[i]->join_group("saturation");
    scheduler.run_until(scheduler.now() + 500_ms);

    std::uint64_t observed = 0;
    endpoints[0]->set_deliver_handler(
        [&observed](const GroupCommEndpoint::Delivery&) { ++observed; });

    // Open-loop feeders: the last `senders` members (never the sequencer)
    // each submit a burst every feed tick until the end of the run.
    const SimTime stop_feeding =
        scheduler.now() + options.warmup + options.measured;
    const Bytes payload(options.payload_bytes, 0xb7);
    for (int s = 0; s < options.senders; ++s) {
        GroupCommEndpoint* ep = endpoints[options.members - 1 - s].get();
        auto feed = std::make_shared<std::function<void()>>();
        *feed = [&scheduler, ep, group, &payload, &options, stop_feeding, feed] {
            for (int k = 0; k < options.burst; ++k) ep->multicast(group, payload);
            if (scheduler.now() + options.feed_interval < stop_feeding) {
                scheduler.schedule_after(options.feed_interval, [feed] { (*feed)(); });
            }
        };
        scheduler.schedule_after(SimDuration{s + 1}, [feed] { (*feed)(); });
    }

    scheduler.run_until(scheduler.now() + options.warmup);
    const std::uint64_t delivered_before = observed;
    const std::uint64_t wire_before = network.stats().messages_sent;
    const alloc::Snapshot heap_before = alloc::snapshot();
    scheduler.run_until(scheduler.now() + options.measured);
    const alloc::Snapshot heap_after = alloc::snapshot();

    SaturationResult result;
    result.delivered = observed - delivered_before;
    result.wire_messages = network.stats().messages_sent - wire_before;
    if (result.delivered > 0) {
        const double delivered = static_cast<double>(result.delivered);
        result.allocs_per_inv =
            static_cast<double>(alloc::allocs_between(heap_before, heap_after)) / delivered;
        result.net_allocs_per_inv =
            static_cast<double>(alloc::net_between(heap_before, heap_after)) / delivered;
    }
    result.invocations_per_sec =
        static_cast<double>(result.delivered) / to_seconds(options.measured);
    result.metrics_json = network.metrics().to_json();

    if (sink != nullptr) {
        network.metrics().set_trace_sink(nullptr);
        obs::TraceDump dump = sink->dump();
        if (const obs::LatencyHistogram* h =
                network.metrics().histogram(obs::metric::kGcsDeliveryLatencyUs)) {
            dump.expectations.push_back(obs::TraceExpectation{
                std::string(obs::metric::kGcsDeliveryLatencyUs), h->count(), h->sum()});
        }
        result.profile = obs::LatencyProfiler{}.analyze(dump);
        // newtop-lint: allow(getenv): artifact destination only; cannot influence simulated behaviour
        const char* dump_dir = std::getenv("NEWTOP_TRACE_DUMP_OUT");
        if (dump_dir != nullptr && *dump_dir != '\0') {
            const std::filesystem::path dir(dump_dir);
            std::filesystem::create_directories(dir);
            const std::filesystem::path path = dir / "saturation.trace.json";
            std::ofstream out(path, std::ios::binary | std::ios::trunc);
            out << dump.to_json();
            out.close();
            std::cout << "# trace-dump " << path.string() << "\n";
        }
    }
    return result;
}

/// `steady_state` marks modes that drain their offered load; only those make
/// a net-allocation claim (a backlogged mode buffers its queue growth).
std::string json_mode(const char* name, bool steady_state, const SaturationOptions& options,
                      const SaturationResult& result) {
    std::string out = "{\"name\":\"";
    out += name;
    out += "\",\"steady_state\":";
    out += steady_state ? "true" : "false";
    out += ",\"order_window\":" + std::to_string(options.order_window);
    out += ",\"order_max_batch\":" + std::to_string(options.order_max_batch);
    out += ",\"delivered\":" + std::to_string(result.delivered);
    out += ",\"wire_messages\":" + std::to_string(result.wire_messages);
    out += ",\"invocations_per_sec\":" + std::to_string(result.invocations_per_sec);
    out += ",\"allocs_per_inv\":" + std::to_string(result.allocs_per_inv);
    out += ",\"net_allocs_per_inv\":" + std::to_string(result.net_allocs_per_inv);
    out += "}";
    return out;
}

void write_artifact(const SaturationOptions& unbatched_options,
                    const SaturationResult& unbatched,
                    const SaturationOptions& batched_options,
                    const SaturationResult& batched, double speedup,
                    const SaturationResult& profiled) {
    // newtop-lint: allow(getenv): artifact destination only; cannot influence simulated behaviour
    const char* out_path = std::getenv("NEWTOP_BENCH_OUT");
    const std::filesystem::path path =
        (out_path != nullptr && *out_path != '\0') ? out_path : "BENCH_saturation.json";
    std::ofstream out(path, std::ios::trunc);
    const obs::ProfileReport& profile = profiled.profile;
    out << "{\"bench\":\"saturation\",\"setting\":\"lan\",\"seed\":"
        << unbatched_options.seed << ",\"modes\":["
        << json_mode("unbatched", false, unbatched_options, unbatched) << ","
        << json_mode("batched", true, batched_options, batched) << "],\"speedup\":" << speedup
        << ",\"profile\":{\"reconciled\":" << (profile.reconciled() ? "true" : "false")
        << ",\"delivered\":" << profiled.delivered << ",\"sequencer_turnaround\":{\"count\":"
        << profile.sequencer_turnaround_count
        << ",\"sum_us\":" << profile.sequencer_turnaround_sum_us << "}}}\n";
    out.close();
    std::cout << "# artifact " << path.string() << "\n";
}

void BM_Saturation_Lan(benchmark::State& state) {
    for (auto _ : state) {
        SaturationOptions unbatched_options;
        unbatched_options.order_window = 0;  // pre-window behaviour
        const SaturationResult unbatched = run_saturation(unbatched_options);

        SaturationOptions batched_options;  // defaults: window 16, batch 64
        const SaturationResult batched = run_saturation(batched_options);

        // Shorter traced run: every ship/arrival/order/delivery event is
        // captured and the trace-derived ship->delivery sums must reconcile
        // with the gcs.delivery_latency_us histogram (the flood runs above
        // stay untraced so their throughput is undisturbed).
        SaturationOptions profiled_options;
        profiled_options.profile = true;
        profiled_options.burst = 8;
        profiled_options.warmup = 200_ms;
        profiled_options.measured = 400_ms;
        const SaturationResult profiled = run_saturation(profiled_options);

        const double speedup = unbatched.invocations_per_sec > 0
                                   ? batched.invocations_per_sec /
                                         unbatched.invocations_per_sec
                                   : 0.0;
        state.counters["unbatched_inv_per_s"] = unbatched.invocations_per_sec;
        state.counters["batched_inv_per_s"] = batched.invocations_per_sec;
        state.counters["speedup"] = speedup;
        state.counters["reconciled"] = profiled.profile.reconciled() ? 1.0 : 0.0;
        state.counters["allocs_per_inv"] = batched.allocs_per_inv;
        state.counters["net_allocs_per_inv"] = batched.net_allocs_per_inv;
        if (!profiled.profile.reconciled()) {
            std::cerr << "# RECONCILIATION FAILED for the traced saturation run\n"
                      << profiled.profile.to_text();
        }
        // Steady-state allocation discipline: after warm-up the data plane
        // runs on recycled arena buffers and pre-sized containers, so net
        // heap growth per delivered invocation must be ~0.  A small budget
        // absorbs map-node churn from the holdback/assignment indexes.
        if (batched.net_allocs_per_inv > kNetAllocBudgetPerInv) {
            std::cerr << "# ALLOC REGRESSION: net " << batched.net_allocs_per_inv
                      << " allocs/invocation in steady state (budget "
                      << kNetAllocBudgetPerInv << ")\n";
            state.SkipWithError("steady-state net allocations per invocation over budget");
        }
        write_artifact(unbatched_options, unbatched, batched_options, batched, speedup,
                       profiled);
        emit_metrics(batched.metrics_json);
    }
}
BENCHMARK(BM_Saturation_Lan)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
