// Graphs 11-16 — closed vs. open group invocation.
//
// Three servers with the asymmetric ordering protocol, clients invoking
// wait-for-all (the paper's §5.1.3 configuration):
//   Graphs 11-12: clients & servers on the same LAN,
//   Graphs 13-14: servers on the LAN, clients distant,
//   Graphs 15-16: everything geographically distributed.
//
// Expected shapes: within the LAN the two approaches are close (closed buys
// automatic failure masking almost for free); once clients sit behind
// high-latency paths the open approach wins clearly — the client stays out
// of the servers' group protocol and pays a single WAN round trip.
#include "harness.hpp"

namespace {

using namespace newtop;
using namespace newtop::bench;

RequestReplyOptions with_bind(Setting setting, int clients, BindMode bind) {
    RequestReplyOptions options;
    options.setting = setting;
    options.servers = 3;
    options.clients = clients;
    options.bind = BindOptions{.mode = bind, .restricted = bind == BindMode::kOpen};
    options.mode = InvocationMode::kWaitAll;
    options.server_order = OrderMode::kTotalAsymmetric;
    return options;
}

#define NEWTOP_BENCH(name, setting, bind)                                     \
    void name(benchmark::State& state) {                                      \
        for (auto _ : state) {                                                \
            report(state, RequestReplyBench::run(with_bind(                   \
                              setting, static_cast<int>(state.range(0)), bind))); \
        }                                                                      \
    }                                                                          \
    BENCHMARK(name)->DenseRange(1, 19, 3)->Arg(20)->Iterations(1)->Unit(      \
        benchmark::kMillisecond)

NEWTOP_BENCH(BM_Graphs11and12_Closed_Lan, Setting::kLan, BindMode::kClosed);
NEWTOP_BENCH(BM_Graphs11and12_Open_Lan, Setting::kLan, BindMode::kOpen);
NEWTOP_BENCH(BM_Graphs13and14_Closed_DistantClients, Setting::kDistantClients,
             BindMode::kClosed);
NEWTOP_BENCH(BM_Graphs13and14_Open_DistantClients, Setting::kDistantClients,
             BindMode::kOpen);
NEWTOP_BENCH(BM_Graphs15and16_Closed_Geo, Setting::kGeo, BindMode::kClosed);
NEWTOP_BENCH(BM_Graphs15and16_Open_Geo, Setting::kGeo, BindMode::kOpen);

}  // namespace

BENCHMARK_MAIN();
