// Global operator new/delete replacement with relaxed atomic counters.
// See alloc_hook.hpp.  Lives in its own translation unit so linking it is
// an explicit per-binary decision (every bench target; never the library).
#include "alloc_hook.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};

void* counted_alloc(std::size_t size) noexcept {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size == 0 ? 1 : size);
}

void counted_free(void* p) noexcept {
    if (p == nullptr) return;
    g_frees.fetch_add(1, std::memory_order_relaxed);
    std::free(p);
}

}  // namespace

namespace newtop::bench::alloc {

Snapshot snapshot() {
    return {g_allocs.load(std::memory_order_relaxed), g_frees.load(std::memory_order_relaxed)};
}

}  // namespace newtop::bench::alloc

void* operator new(std::size_t size) {
    void* p = counted_alloc(size);
    if (p == nullptr) throw std::bad_alloc{};
    return p;
}
void* operator new[](std::size_t size) {
    void* p = counted_alloc(size);
    if (p == nullptr) throw std::bad_alloc{};
    return p;
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
    return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
    return counted_alloc(size);
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { counted_free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { counted_free(p); }
