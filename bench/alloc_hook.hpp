// Heap-allocation counting for the benchmarks.
//
// bench/alloc_hook.cpp (linked into every bench binary) replaces the global
// operator new/delete with counting forwarders to malloc/free.  Snapshot the
// counters around a measured window to get the allocation cost of that
// window: `allocs` is churn (every operator new), `allocs - frees` is net
// heap growth.  In steady state the protocol recycles its buffers (encode
// arena, pooled CDR storage, pre-sized containers), so net growth per
// delivered invocation must stay ~0; churn is reported alongside so codec
// or container regressions show up even when they free what they allocate.
#pragma once

#include <cstdint>

namespace newtop::bench::alloc {

struct Snapshot {
    std::uint64_t allocs{0};
    std::uint64_t frees{0};
};

/// Current process-wide counter values (monotonic since process start).
Snapshot snapshot();

/// Allocations in `end` that happened after `begin`.
inline std::uint64_t allocs_between(const Snapshot& begin, const Snapshot& end) {
    return end.allocs - begin.allocs;
}

/// Net heap growth (allocations never freed) across the window.  Signed:
/// a window can free more than it allocates (e.g. teardown).
inline std::int64_t net_between(const Snapshot& begin, const Snapshot& end) {
    return static_cast<std::int64_t>(end.allocs - begin.allocs) -
           static_cast<std::int64_t>(end.frees - begin.frees);
}

}  // namespace newtop::bench::alloc
