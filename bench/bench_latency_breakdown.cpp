// Latency attribution — where the paper's ~2.5x NewTop-over-CORBA overhead
// actually goes, phase by phase.
//
// Six profiled request/reply configurations: the non-replicated anchor
// (one server, wait-first — the §5.1.1 "2.5x a plain CORBA call" setup)
// on the LAN and with distant clients, and the replicated 3-server
// wait-all group under both ordering protocols (symmetric vs asymmetric)
// on the LAN and geo-distributed.  Every run decomposes each invocation's
// critical path into marshal / credit_wait / wire / order_wait / cpu_wait /
// execution / reply_collection and cross-checks the phase sums against the
// independently measured reply-wait histograms (>1% mismatch = tracing
// bug, reported as reconciled=false and a zero counter).
//
// Emits BENCH_latency_breakdown.json (override with NEWTOP_BENCH_OUT); set
// NEWTOP_TRACE_DUMP_OUT=<dir> to keep the raw trace dumps for
// `tools/newtop_prof`.
#include "harness.hpp"

namespace {

using namespace newtop;
using namespace newtop::bench;

struct Config {
    const char* name;
    Setting setting;
    OrderMode order;
    int servers;
    InvocationMode mode;
};

constexpr Config kConfigs[] = {
    {"nonreplicated_lan", Setting::kLan, OrderMode::kTotalAsymmetric, 1,
     InvocationMode::kWaitFirst},
    {"nonreplicated_wan", Setting::kDistantClients, OrderMode::kTotalAsymmetric, 1,
     InvocationMode::kWaitFirst},
    {"replicated_lan_asym", Setting::kLan, OrderMode::kTotalAsymmetric, 3,
     InvocationMode::kWaitAll},
    {"replicated_lan_sym", Setting::kLan, OrderMode::kTotalSymmetric, 3,
     InvocationMode::kWaitAll},
    {"replicated_wan_asym", Setting::kGeo, OrderMode::kTotalAsymmetric, 3,
     InvocationMode::kWaitAll},
    {"replicated_wan_sym", Setting::kGeo, OrderMode::kTotalSymmetric, 3,
     InvocationMode::kWaitAll},
};

RequestReplyResult run_config(const Config& config) {
    RequestReplyOptions options;
    options.setting = config.setting;
    options.servers = config.servers;
    options.clients = 1;
    options.bind = BindOptions{.mode = BindMode::kOpen, .restricted = true};
    options.mode = config.mode;
    options.server_order = config.order;
    options.profile = true;
    return RequestReplyBench::run(options);
}

void append_phases(std::string& out, const std::map<std::string, obs::PhaseStats>& phases) {
    out += "{";
    bool first = true;
    for (const std::string_view name : obs::phase::kAll) {
        const auto it = phases.find(std::string(name));
        if (it == phases.end()) continue;
        if (!first) out += ',';
        first = false;
        out += "\"";
        out += name;
        out += "\":{\"sum_us\":" + std::to_string(it->second.sum_us);
        out += ",\"p50_us\":" + std::to_string(it->second.p50_us);
        out += ",\"p90_us\":" + std::to_string(it->second.p90_us);
        out += ",\"p99_us\":" + std::to_string(it->second.p99_us) + "}";
    }
    out += "}";
}

void BM_LatencyBreakdown(benchmark::State& state) {
    for (auto _ : state) {
        std::string artifact = "{\"bench\":\"latency_breakdown\",\"seed\":1,\"configs\":[";
        bool all_reconciled = true;
        bool first = true;
        for (const Config& config : kConfigs) {
            const RequestReplyResult result = run_config(config);
            const bool reconciled = result.profile.reconciled();
            all_reconciled &= reconciled;
            if (!first) artifact += ',';
            first = false;
            artifact += std::string("{\"name\":\"") + config.name + "\"";
            artifact += std::string(",\"setting\":\"") + setting_name(config.setting) + "\"";
            artifact += std::string(",\"order\":\"") +
                        (config.order == OrderMode::kTotalSymmetric ? "symmetric"
                                                                    : "asymmetric") +
                        "\"";
            artifact += ",\"servers\":" + std::to_string(config.servers);
            artifact += ",\"mode\":" + std::to_string(static_cast<int>(config.mode));
            artifact += ",\"mean_latency_ms\":" + std::to_string(result.mean_latency_ms);
            artifact += ",\"req_per_s\":" + std::to_string(result.throughput_rps);
            artifact += ",\"invocations\":" + std::to_string(result.profile.invocations);
            artifact += ",\"unattributed\":" + std::to_string(result.profile.unattributed);
            artifact += std::string(",\"reconciled\":") + (reconciled ? "true" : "false");
            artifact += ",\"dominant\":\"" + result.profile.dominant + "\"";
            artifact += ",\"phases\":";
            append_phases(artifact, result.profile.phases);
            artifact += "}";
            state.counters[std::string(config.name) + "_ms"] = result.mean_latency_ms;
            if (!reconciled) {
                std::cerr << "# RECONCILIATION FAILED for " << config.name << "\n"
                          << result.profile.to_text();
            }
        }
        artifact += "]}\n";
        state.counters["reconciled"] = all_reconciled ? 1.0 : 0.0;

        // newtop-lint: allow(getenv): artifact destination only; cannot influence simulated behaviour
        const char* out_path = std::getenv("NEWTOP_BENCH_OUT");
        const std::filesystem::path path = (out_path != nullptr && *out_path != '\0')
                                               ? out_path
                                               : "BENCH_latency_breakdown.json";
        std::ofstream out(path, std::ios::trunc);
        out << artifact;
        out.close();
        std::cout << "# artifact " << path.string() << "\n";
    }
}
BENCHMARK(BM_LatencyBreakdown)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
