// §5.1.3 ablation — symmetric vs. asymmetric total order for request-reply
// interactions (the figures the paper omitted "to save space", but whose
// conclusions it states):
//   (i)  closed + symmetric performs poorly: ordering every request needs
//        protocol multicast traffic among *all* members (watch the
//        wire_msgs counter grow),
//   (ii) under the open approach there is little to choose between the two
//        protocols: ordering happens within one small group only.
#include "harness.hpp"

namespace {

using namespace newtop;
using namespace newtop::bench;

RequestReplyOptions ablation(BindMode bind, OrderMode order, int clients) {
    RequestReplyOptions options;
    options.setting = Setting::kLan;
    options.servers = 3;
    options.clients = clients;
    options.bind = BindOptions{.mode = bind,
                               .restricted = bind == BindMode::kOpen,
                               .cs_order = order};
    options.mode = InvocationMode::kWaitAll;
    options.server_order = order;
    return options;
}

#define NEWTOP_BENCH(name, bind, order)                                        \
    void name(benchmark::State& state) {                                       \
        for (auto _ : state) {                                                 \
            report(state, RequestReplyBench::run(ablation(                     \
                              bind, order, static_cast<int>(state.range(0))))); \
        }                                                                       \
    }                                                                           \
    BENCHMARK(name)->Arg(1)->Arg(4)->Arg(8)->Iterations(1)->Unit(              \
        benchmark::kMillisecond)

NEWTOP_BENCH(BM_Ablation_Closed_Symmetric, BindMode::kClosed, OrderMode::kTotalSymmetric);
NEWTOP_BENCH(BM_Ablation_Closed_Asymmetric, BindMode::kClosed, OrderMode::kTotalAsymmetric);
NEWTOP_BENCH(BM_Ablation_Open_Symmetric, BindMode::kOpen, OrderMode::kTotalSymmetric);
NEWTOP_BENCH(BM_Ablation_Open_Asymmetric, BindMode::kOpen, OrderMode::kTotalAsymmetric);

}  // namespace

BENCHMARK_MAIN();
