// Graphs 17-18 — peer participation: every member multicasts one-way sends
// (100-character payloads) as fast as the group delivers them, and we
// measure how long a multicast takes to become deliverable at all members,
// under the symmetric and the asymmetric ordering protocols.
//
//   Graphs 17-18: members spread over Newcastle / London / Pisa.
//   The LAN sweep reproduces the §5.2 textual observations: performance
//   degrades as membership grows, much faster for the asymmetric protocol
//   because the sequencer becomes a CPU bottleneck.
//
// Expected shapes: WAN — symmetric roughly 2x the asymmetric throughput
// (the sequencer redirection costs a second WAN hop); LAN — both degrade
// with membership, asymmetric faster.
#include <benchmark/benchmark.h>

#include <iostream>
#include <map>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "net/calibration.hpp"
#include "newtop/newtop_service.hpp"

namespace {

using namespace newtop;
using namespace newtop::sim_literals;

enum class Where : std::uint8_t { kLan, kGeo };

struct PeerResult {
    double mean_deliver_ms{0.0};
    double group_msgs_per_s{0.0};
    std::string metrics_json;
};

struct PeerOptions {
    Where where{Where::kGeo};
    OrderMode order{OrderMode::kTotalSymmetric};
    int members{3};
    int messages_per_member{40};
    int warmup_per_member{5};
    std::uint64_t seed{13};
};

class PeerBench {
public:
    static PeerResult run(const PeerOptions& options) {
        PeerBench bench(options);
        return bench.execute();
    }

private:
    explicit PeerBench(const PeerOptions& options)
        : options_(options),
          sites_(calibration::make_paper_topology()),
          network_(scheduler_, std::move(sites_.topology), options.seed) {}

    struct Member {
        std::size_t index{};
        std::unique_ptr<Orb> orb;
        std::unique_ptr<NewTopService> nso;
        PeerGroup group;
        int issued{0};
        std::vector<SimDuration> latencies;
        SimTime window_start{-1};
        SimTime window_end{0};
    };

    [[nodiscard]] SiteId site_of(int index) const {
        if (options_.where == Where::kLan) return sites_.newcastle;
        const SiteId spread[3] = {sites_.newcastle, sites_.london, sites_.pisa};
        return spread[index % 3];
    }

    struct PendingSample {
        std::size_t deliveries{0};
        SimTime issued_at{0};
    };

    void publish_next(Member& member) {
        // 100-character body, as in §5.2.
        std::string body(100, 'x');
        body[0] = static_cast<char>('A' + member.index);
        const std::uint64_t tag =
            member.index * 1'000'000 + static_cast<std::uint64_t>(member.issued);
        ++member.issued;
        Encoder e;
        e.put_u64(tag);
        e.put_string(body);
        pending_deliveries_[tag] = PendingSample{0, scheduler_.now()};
        member.group.publish(std::move(e).take());
    }

    void on_delivery(std::size_t at_member, const Bytes& payload) {
        Decoder d(payload);
        const std::uint64_t tag = d.get_u64();
        Member& sender = *members_[tag / 1'000'000];

        // §5.2 pacing: members "issue multicasts as frequently as possible".
        // A member fires its next multicast as soon as its previous one is
        // delivered back to itself — continuous pipelined traffic that
        // self-throttles under CPU and ordering load.
        if (at_member == sender.index &&
            sender.issued < options_.warmup_per_member + options_.messages_per_member) {
            publish_next(sender);
        }

        // Metric: time from issue until deliverable at *all* members.
        const auto it = pending_deliveries_.find(tag);
        if (it == pending_deliveries_.end()) return;
        if (++it->second.deliveries < members_.size()) return;
        const PendingSample sample = it->second;
        pending_deliveries_.erase(it);
        if (tag % 1'000'000 >= static_cast<std::uint64_t>(options_.warmup_per_member)) {
            sender.latencies.push_back(scheduler_.now() - sample.issued_at);
            sender.window_end = scheduler_.now();
            if (sender.window_start < 0) sender.window_start = sample.issued_at;
        }
    }

    PeerResult execute() {
        GroupConfig config;
        config.order = options_.order;
        config.liveness = LivenessMode::kLively;  // peer groups are lively (§3)

        for (int i = 0; i < options_.members; ++i) {
            auto member = std::make_unique<Member>();
            member->index = static_cast<std::size_t>(i);
            member->orb = std::make_unique<Orb>(network_, network_.add_node(site_of(i)));
            member->nso = std::make_unique<NewTopService>(*member->orb, directory_);
            Member* raw = member.get();
            member->group = member->nso->join_peer_group(
                "peer", config, [this, raw](const NewTopService::PeerMessage& m) {
                    on_delivery(raw->index, m.payload);
                });
            members_.push_back(std::move(member));
            scheduler_.run_until(scheduler_.now() + 500_ms);
        }

        for (auto& member : members_) publish_next(*member);
        const int total = options_.warmup_per_member + options_.messages_per_member;
        for (int guard = 0; guard < 600; ++guard) {
            scheduler_.run_until(scheduler_.now() + 1_s);
            bool all_done = pending_deliveries_.empty();
            for (const auto& member : members_) all_done &= member->issued >= total;
            if (all_done) break;
        }

        PeerResult result;
        std::vector<double> means;
        SimTime start = -1, end = 0;
        std::size_t measured = 0;
        for (const auto& member : members_) {
            if (member->latencies.empty()) continue;
            means.push_back(std::accumulate(member->latencies.begin(),
                                            member->latencies.end(), 0.0) /
                            static_cast<double>(member->latencies.size()));
            measured += member->latencies.size();
            if (start < 0 || (member->window_start >= 0 && member->window_start < start)) {
                start = member->window_start;
            }
            end = std::max(end, member->window_end);
        }
        if (!means.empty()) {
            result.mean_deliver_ms = to_ms(static_cast<SimDuration>(
                std::accumulate(means.begin(), means.end(), 0.0) /
                static_cast<double>(means.size())));
        }
        if (end > start && start >= 0) {
            result.group_msgs_per_s = static_cast<double>(measured) / to_seconds(end - start);
        }
        result.metrics_json = network_.metrics().to_json();
        return result;
    }

    PeerOptions options_;
    Scheduler scheduler_;
    calibration::PaperSites sites_;
    Network network_;
    Directory directory_;
    std::vector<std::unique_ptr<Member>> members_;
    std::map<std::uint64_t, PendingSample> pending_deliveries_;
};

void report(benchmark::State& state, const PeerResult& result) {
    state.counters["deliver_ms"] = result.mean_deliver_ms;
    state.counters["group_msg_per_s"] = result.group_msgs_per_s;
    std::cout << "# metrics " << result.metrics_json << "\n";
}

#define NEWTOP_PEER_BENCH(name, bench_where, bench_order)                      \
    void name(benchmark::State& state) {                                      \
        for (auto _ : state) {                                                 \
            PeerOptions options;                                               \
            options.where = bench_where;                                       \
            options.order = bench_order;                                       \
            options.members = static_cast<int>(state.range(0));                \
            report(state, PeerBench::run(options));                            \
        }                                                                      \
    }                                                                          \
    BENCHMARK(name)->DenseRange(2, 10, 2)->Iterations(1)->Unit(               \
        benchmark::kMillisecond)

NEWTOP_PEER_BENCH(BM_Graphs17and18_Peer_Geo_Symmetric, Where::kGeo,
                  OrderMode::kTotalSymmetric);
NEWTOP_PEER_BENCH(BM_Graphs17and18_Peer_Geo_Asymmetric, Where::kGeo,
                  OrderMode::kTotalAsymmetric);
NEWTOP_PEER_BENCH(BM_Sec52Text_Peer_Lan_Symmetric, Where::kLan,
                  OrderMode::kTotalSymmetric);
NEWTOP_PEER_BENCH(BM_Sec52Text_Peer_Lan_Asymmetric, Where::kLan,
                  OrderMode::kTotalAsymmetric);

}  // namespace

BENCHMARK_MAIN();
