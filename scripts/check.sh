#!/usr/bin/env bash
# Full local check: build + tier-1 ctest (which includes the newtop_lint
# whole-tree scan) on the plain tree, then again with AddressSanitizer +
# UBSan (the NEWTOP_SANITIZE cmake option), so the sanitizer configuration
# is exercised routinely rather than manually.  Both trees build with
# NEWTOP_WERROR=ON (the default).
#
# Usage: scripts/check.sh [--lint] [--tidy] [--campaign [N]] [--bench] [extra ctest args...]
#
#   (default)        run the tier-1 suite (ctest -L tier1) in both trees
#   --lint           fast path: build only newtop_lint and scan the tree,
#                    then run scripts/format.sh --check; no tests
#   --tidy           additionally build a clang-tidy tree (build-tidy,
#                    -DNEWTOP_CLANG_TIDY=ON); skipped with a notice when
#                    clang-tidy is not installed
#   --campaign [N]   additionally run the chaos campaign over N seeds
#                    (default 200) in both trees.  On failure the campaign
#                    prints the failing seed; replay it with
#                        NEWTOP_FUZZ_SEED=<seed> build/tools/newtop_fuzz
#   --bench          fast path: build and run the LAN saturation,
#                    latency-breakdown and reconfig benchmarks into build/, gate the
#                    trace dumps through newtop_prof (phase sums must
#                    reconcile with the histograms within 1%), diff against
#                    the committed BENCH_*.json baselines, then refresh the
#                    repo-root artifacts so the new numbers can be
#                    committed; no tests
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

LINT_ONLY=0
TIDY=0
CAMPAIGN=0
CAMPAIGN_SEEDS=200
BENCH_ONLY=0
while [[ "${1:-}" == --* ]]; do
    case "$1" in
        --lint)
            LINT_ONLY=1
            shift
            ;;
        --bench)
            BENCH_ONLY=1
            shift
            ;;
        --tidy)
            TIDY=1
            shift
            ;;
        --campaign)
            CAMPAIGN=1
            shift
            if [[ "${1:-}" =~ ^[0-9]+$ ]]; then
                CAMPAIGN_SEEDS="$1"
                shift
            fi
            ;;
        *)
            break
            ;;
    esac
done
EXTRA_CTEST_ARGS=("$@")

if [[ "${BENCH_ONLY}" == 1 ]]; then
    echo "== bench (build)"
    cmake -B build -S . >/dev/null
    cmake --build build -j "${JOBS}" \
        --target bench_saturation bench_latency_breakdown bench_reconfig \
        bench_gray_failure newtop_prof
    rm -rf build/bench_traces
    echo "== bench_saturation (run)"
    NEWTOP_BENCH_OUT=build/BENCH_saturation.json \
    NEWTOP_TRACE_DUMP_OUT=build/bench_traces \
        build/bench/bench_saturation --benchmark_filter=BM_Saturation_Lan
    echo "== bench_latency_breakdown (run)"
    NEWTOP_BENCH_OUT=build/BENCH_latency_breakdown.json \
    NEWTOP_TRACE_DUMP_OUT=build/bench_traces \
        build/bench/bench_latency_breakdown
    echo "== bench_reconfig (run)"
    NEWTOP_BENCH_OUT=build/BENCH_reconfig.json \
        build/bench/bench_reconfig
    echo "== bench_gray_failure (run)"
    NEWTOP_BENCH_OUT=build/BENCH_gray_failure.json \
        build/bench/bench_gray_failure
    echo "== newtop_prof reconciliation gate"
    mkdir -p build/prof_reports
    for dump in build/bench_traces/*.trace.json; do
        name="$(basename "${dump}" .trace.json)"
        build/tools/newtop_prof --json -o "build/prof_reports/${name}.json" "${dump}"
        build/tools/newtop_prof "${dump}" | head -2
    done
    echo "== diff vs committed baselines"
    python3 scripts/bench_diff.py build/BENCH_saturation.json
    python3 scripts/bench_diff.py build/BENCH_latency_breakdown.json
    python3 scripts/bench_diff.py build/BENCH_reconfig.json
    python3 scripts/bench_diff.py build/BENCH_gray_failure.json
    cp build/BENCH_saturation.json BENCH_saturation.json
    cp build/BENCH_latency_breakdown.json BENCH_latency_breakdown.json
    cp build/BENCH_reconfig.json BENCH_reconfig.json
    cp build/BENCH_gray_failure.json BENCH_gray_failure.json
    echo "== bench artifacts refreshed (BENCH_saturation.json, BENCH_latency_breakdown.json, BENCH_reconfig.json, BENCH_gray_failure.json)"
    exit 0
fi

if [[ "${LINT_ONLY}" == 1 ]]; then
    echo "== newtop_lint (build)"
    cmake -B build -S . >/dev/null
    cmake --build build -j "${JOBS}" --target newtop_lint
    build/tools/newtop_lint --root . --baseline tools/lint_suppressions.baseline \
        --json -o build/lint_report.json
    echo "== format check"
    scripts/format.sh --check
    echo "== lint checks passed"
    exit 0
fi

run_tree() {
    local dir="$1"
    shift
    echo "== configure ${dir} ($*)"
    cmake -B "${dir}" -S . "$@" >/dev/null
    echo "== build ${dir}"
    cmake --build "${dir}" -j "${JOBS}"
    echo "== newtop_lint ${dir}"
    "${dir}/tools/newtop_lint" --root . --baseline tools/lint_suppressions.baseline \
        --json -o "${dir}/lint_report.json"
    echo "== ctest ${dir} (tier1)"
    ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" -L tier1 \
        "${EXTRA_CTEST_ARGS[@]}"
    if [[ "${CAMPAIGN}" == 1 ]]; then
        echo "== chaos campaign ${dir} (${CAMPAIGN_SEEDS} seeds)"
        if ! "${dir}/tools/newtop_fuzz" --seeds "${CAMPAIGN_SEEDS}"; then
            echo "!! campaign failed in ${dir}; replay the seed printed above with:"
            echo "!!     NEWTOP_FUZZ_SEED=<seed> ${dir}/tools/newtop_fuzz"
            exit 1
        fi
        echo "== chaos campaign ${dir} (${CAMPAIGN_SEEDS} seeds, reconfig-enabled)"
        if ! "${dir}/tools/newtop_fuzz" --seeds "${CAMPAIGN_SEEDS}" --base 1000000 --reconfig; then
            echo "!! reconfig campaign failed in ${dir}; replay the seed printed above with:"
            echo "!!     NEWTOP_FUZZ_SEED=<seed> NEWTOP_FUZZ_RECONFIG=1 ${dir}/tools/newtop_fuzz"
            exit 1
        fi
        echo "== chaos campaign ${dir} (${CAMPAIGN_SEEDS} seeds, gray-failure-enabled)"
        if ! "${dir}/tools/newtop_fuzz" --seeds "${CAMPAIGN_SEEDS}" --base 2000000 --gray; then
            echo "!! gray campaign failed in ${dir}; replay the seed printed above with:"
            echo "!!     NEWTOP_FUZZ_SEED=<seed> NEWTOP_FUZZ_GRAY=1 ${dir}/tools/newtop_fuzz"
            exit 1
        fi
    fi
}

run_tree build
run_tree build-asan -DNEWTOP_SANITIZE=address,undefined

if [[ "${TIDY}" == 1 ]]; then
    if command -v clang-tidy >/dev/null 2>&1; then
        echo "== clang-tidy tree (build-tidy)"
        cmake -B build-tidy -S . -DNEWTOP_CLANG_TIDY=ON >/dev/null
        cmake --build build-tidy -j "${JOBS}"
    else
        echo "== clang-tidy not installed; skipping --tidy tree"
    fi
fi

echo "== format check"
scripts/format.sh --check

echo "== all checks passed"
