#!/usr/bin/env bash
# Full local check: build + tier-1 ctest on the plain tree, then again with
# AddressSanitizer + UBSan (the NEWTOP_SANITIZE cmake option), so the
# sanitizer configuration is exercised routinely rather than manually.
#
# Usage: scripts/check.sh [--campaign [N]] [extra ctest args...]
#
#   (default)        run the tier-1 suite (ctest -L tier1) in both trees
#   --campaign [N]   additionally run the chaos campaign over N seeds
#                    (default 200) in both trees.  On failure the campaign
#                    prints the failing seed; replay it with
#                        NEWTOP_FUZZ_SEED=<seed> build/tools/newtop_fuzz
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

CAMPAIGN=0
CAMPAIGN_SEEDS=200
if [[ "${1:-}" == "--campaign" ]]; then
    CAMPAIGN=1
    shift
    if [[ "${1:-}" =~ ^[0-9]+$ ]]; then
        CAMPAIGN_SEEDS="$1"
        shift
    fi
fi
EXTRA_CTEST_ARGS=("$@")

run_tree() {
    local dir="$1"
    shift
    echo "== configure ${dir} ($*)"
    cmake -B "${dir}" -S . "$@" >/dev/null
    echo "== build ${dir}"
    cmake --build "${dir}" -j "${JOBS}"
    echo "== ctest ${dir} (tier1)"
    ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" -L tier1 \
        "${EXTRA_CTEST_ARGS[@]}"
    if [[ "${CAMPAIGN}" == 1 ]]; then
        echo "== chaos campaign ${dir} (${CAMPAIGN_SEEDS} seeds)"
        if ! "${dir}/tools/newtop_fuzz" --seeds "${CAMPAIGN_SEEDS}"; then
            echo "!! campaign failed in ${dir}; replay the seed printed above with:"
            echo "!!     NEWTOP_FUZZ_SEED=<seed> ${dir}/tools/newtop_fuzz"
            exit 1
        fi
    fi
}

run_tree build
run_tree build-asan -DNEWTOP_SANITIZE=address,undefined

echo "== all checks passed"
