#!/usr/bin/env bash
# Full local check: build + ctest on the plain tree, then again with
# AddressSanitizer + UBSan (the NEWTOP_SANITIZE cmake option), so the
# sanitizer configuration is exercised routinely rather than manually.
#
# Usage: scripts/check.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_tree() {
    local dir="$1"
    shift
    echo "== configure ${dir} ($*)"
    cmake -B "${dir}" -S . "$@" >/dev/null
    echo "== build ${dir}"
    cmake --build "${dir}" -j "${JOBS}"
    echo "== ctest ${dir}"
    ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" "${EXTRA_CTEST_ARGS[@]}"
}

EXTRA_CTEST_ARGS=("$@")

run_tree build
run_tree build-asan -DNEWTOP_SANITIZE=address,undefined

echo "== all checks passed"
