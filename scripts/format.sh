#!/usr/bin/env bash
# clang-format over *changed* files only (the tree predates .clang-format;
# a mass reformat would bury real history, so only touched files must
# conform).
#
# Usage:
#   scripts/format.sh            reformat changed files in place
#   scripts/format.sh --check    fail (exit 1) if any changed file needs
#                                reformatting — the mode CI runs
#
# "Changed" = files added/modified vs the merge-base with origin/main (or
# HEAD when that ref is unavailable), plus staged and unstaged edits.
set -euo pipefail

cd "$(dirname "$0")/.."

CHECK=0
if [[ "${1:-}" == "--check" ]]; then
    CHECK=1
    shift
fi

if ! command -v clang-format >/dev/null 2>&1; then
    echo "format.sh: clang-format not found; skipping (install it to enable this check)" >&2
    exit 0
fi

BASE="HEAD"
if git rev-parse --verify -q origin/main >/dev/null; then
    BASE="$(git merge-base HEAD origin/main)"
fi

mapfile -t FILES < <(
    {
        git diff --name-only --diff-filter=ACMR "${BASE}"
        git diff --name-only --diff-filter=ACMR --cached
        git ls-files --others --exclude-standard
    } | sort -u | grep -E '\.(hpp|cpp|h|cc)$' | grep -v '^tests/lint_fixtures/' || true
)

if [[ "${#FILES[@]}" -eq 0 ]]; then
    echo "format.sh: no changed C++ files"
    exit 0
fi

if [[ "${CHECK}" == 1 ]]; then
    FAILED=0
    for f in "${FILES[@]}"; do
        [[ -f "$f" ]] || continue
        if ! clang-format --dry-run --Werror "$f" >/dev/null 2>&1; then
            echo "format.sh: needs formatting: $f"
            FAILED=1
        fi
    done
    if [[ "${FAILED}" == 1 ]]; then
        echo "format.sh: run scripts/format.sh to fix" >&2
        exit 1
    fi
    echo "format.sh: ${#FILES[@]} changed file(s) clean"
else
    for f in "${FILES[@]}"; do
        [[ -f "$f" ]] || continue
        clang-format -i "$f"
    done
    echo "format.sh: formatted ${#FILES[@]} file(s)"
fi
