#!/usr/bin/env python3
"""Compare two bench artifacts and warn on regressions.

Usage: bench_diff.py CURRENT [PREVIOUS] [--threshold PCT] [--strict]

PREVIOUS defaults to the committed baseline at the repository root with the
same file name as CURRENT — the BENCH_*.json artifacts are committed, so
the default diff is "this run vs the trajectory the repo promises".

Two schemas are understood:
  * saturation ("modes"): per-mode invocations_per_sec, higher is better;
  * latency_breakdown ("configs"): per-config mean_latency_ms, lower is
    better, plus a note whenever a config's dominant phase changed.

A regression beyond the threshold (default 10%) produces a WARNING line;
the exit code stays 0 (the diff is advisory -- sim-time numbers are
deterministic, so a warning means the *code* changed, not the machine).
Pass --strict to turn warnings into a non-zero exit.
"""

import argparse
import json
import pathlib
import sys


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def diff_modes(current, previous, threshold):
    """Saturation schema: higher invocations_per_sec is better."""
    regressed = False
    prev_modes = {m["name"]: m for m in previous.get("modes", [])}
    for mode in current.get("modes", []):
        name = mode["name"]
        now = mode.get("invocations_per_sec", 0.0)
        if name not in prev_modes:
            print(f"{name}: {now:.0f} inv/s (no previous data)")
            continue
        before = prev_modes[name].get("invocations_per_sec", 0.0)
        delta = 0.0 if before == 0 else (now - before) / before * 100.0
        line = f"{name}: {before:.0f} -> {now:.0f} inv/s ({delta:+.1f}%)"
        if delta < -threshold:
            regressed = True
            print(f"WARNING: throughput regression over {threshold:.0f}%: {line}")
        else:
            print(line)
        # Allocation discipline: per-invocation heap churn must not creep up.
        # Tolerance is one alloc/invocation or 10%, whichever is larger, so
        # tiny counter jitter never fires but a leaked per-message buffer does.
        alloc_now = mode.get("allocs_per_inv")
        alloc_before = prev_modes[name].get("allocs_per_inv")
        if alloc_now is not None and alloc_before is not None:
            budget = alloc_before + max(1.0, alloc_before * 0.10)
            alloc_line = f"  allocs/inv: {alloc_before:.2f} -> {alloc_now:.2f}"
            if alloc_now > budget:
                regressed = True
                print(f"WARNING: allocation regression:{alloc_line}")
            else:
                print(alloc_line)
        net_now = mode.get("net_allocs_per_inv")
        if mode.get("steady_state") and net_now is not None and net_now > 0.5:
            regressed = True
            print(f"WARNING: {name} leaks in steady state: "
                  f"net {net_now:.2f} allocs/invocation")
    speedup = current.get("speedup")
    if speedup is not None:
        print(f"batched/unbatched speedup: {speedup:.2f}x")
    profile = current.get("profile", {})
    if profile and not profile.get("reconciled", True):
        regressed = True
        print("WARNING: traced run did not reconcile against its histograms")
    return regressed


def diff_configs(current, previous, threshold):
    """Latency-breakdown schema: lower mean_latency_ms is better."""
    regressed = False
    prev_configs = {c["name"]: c for c in previous.get("configs", [])}
    for config in current.get("configs", []):
        name = config["name"]
        now = config.get("mean_latency_ms", 0.0)
        if not config.get("reconciled", True):
            regressed = True
            print(f"WARNING: {name} did not reconcile against its histograms")
        if name not in prev_configs:
            print(f"{name}: {now:.3f} ms (no previous data)")
            continue
        before = prev_configs[name].get("mean_latency_ms", 0.0)
        delta = 0.0 if before == 0 else (now - before) / before * 100.0
        line = f"{name}: {before:.3f} -> {now:.3f} ms ({delta:+.1f}%)"
        if delta > threshold:
            regressed = True
            print(f"WARNING: latency regression over {threshold:.0f}%: {line}")
        else:
            print(line)
        dom_before = prev_configs[name].get("dominant")
        dom_now = config.get("dominant")
        if dom_before and dom_now and dom_before != dom_now:
            print(f"  note: dominant phase changed: {dom_before} -> {dom_now}")
    return regressed


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("previous", nargs="?", default=None,
                        help="baseline artifact (default: the committed "
                             "repo-root file with CURRENT's name)")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="regression warning threshold in percent")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero when a regression is found")
    args = parser.parse_args()

    previous_path = args.previous
    if previous_path is None:
        repo_root = pathlib.Path(__file__).resolve().parent.parent
        previous_path = repo_root / pathlib.Path(args.current).name
        if not previous_path.exists():
            print(f"no committed baseline at {previous_path}; nothing to diff")
            return 0

    current = load(args.current)
    previous = load(previous_path)

    if "modes" in current:
        regressed = diff_modes(current, previous, args.threshold)
    elif "configs" in current:
        regressed = diff_configs(current, previous, args.threshold)
    else:
        print(f"unrecognised artifact schema in {args.current}", file=sys.stderr)
        return 2

    return 1 if (regressed and args.strict) else 0


if __name__ == "__main__":
    sys.exit(main())
