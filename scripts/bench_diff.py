#!/usr/bin/env python3
"""Compare two BENCH_saturation.json artifacts and warn on regressions.

Usage: bench_diff.py CURRENT PREVIOUS [--threshold PCT]

Prints a per-mode throughput comparison.  A mode whose invocations_per_sec
dropped by more than the threshold (default 10%) produces a WARNING line;
the exit code stays 0 (the diff is advisory -- sim-time throughput is
deterministic, so a warning means the *code* got slower, not the machine).
Pass --strict to turn warnings into a non-zero exit.
"""

import argparse
import json
import sys


def load_modes(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    return {m["name"]: m for m in doc.get("modes", [])}, doc


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("previous")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="regression warning threshold in percent")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero when a regression is found")
    args = parser.parse_args()

    current, cur_doc = load_modes(args.current)
    previous, _ = load_modes(args.previous)

    regressed = False
    for name, mode in current.items():
        now = mode.get("invocations_per_sec", 0.0)
        if name not in previous:
            print(f"{name}: {now:.0f} inv/s (no previous data)")
            continue
        before = previous[name].get("invocations_per_sec", 0.0)
        delta = 0.0 if before == 0 else (now - before) / before * 100.0
        line = f"{name}: {before:.0f} -> {now:.0f} inv/s ({delta:+.1f}%)"
        if delta < -args.threshold:
            regressed = True
            print(f"WARNING: throughput regression over {args.threshold:.0f}%: {line}")
        else:
            print(line)

    speedup = cur_doc.get("speedup")
    if speedup is not None:
        print(f"batched/unbatched speedup: {speedup:.2f}x")

    return 1 if (regressed and args.strict) else 0


if __name__ == "__main__":
    sys.exit(main())
